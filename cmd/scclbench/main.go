// Command scclbench regenerates the evaluation artifacts of the SCCL
// paper — Tables 3, 4 and 5 and Figures 4, 5 and 6 — from this
// repository's synthesizer, baselines and calibrated cost model, printing
// the same rows and series the paper reports.
//
// Usage:
//
//	scclbench -table 3          # NCCL baseline (C,S,R) table
//	scclbench -table 4          # DGX-1 synthesis table (paper Table 4)
//	scclbench -table 5          # AMD Z52 synthesis table (paper Table 5)
//	scclbench -figure 4|5|6     # speedup series
//	scclbench -sweeps           # one-shot vs session Pareto sweep suite
//	scclbench -all              # everything
//	scclbench -table 4 -slow    # include the minutes-long Alltoall row
//	scclbench -table 4 -workers 4          # synthesize rows concurrently
//	scclbench -table 4 -portfolio 4        # race diversified solvers per slow row
//	scclbench -table 5 -backend smtlib:z3  # discharge to an external solver
//	scclbench -sweeps -json     # also write BENCH_sweeps.json rows
//
// -json writes machine-readable benchmark rows next to the printed
// output: BENCH_sweeps.json for the sweep suite (topology, collective,
// frontier S/R/C, encode+solve wall, probes, workers, session reuse,
// unsat-core solves and dominance-pruned probes) and BENCH_tables.json
// for synthesized table rows — the artifacts CI uploads to track the
// performance trajectory. Set SCCL_BENCH_DIR to redirect the files out
// of the working tree.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	sccl "repro"
	"repro/internal/algorithm"
	"repro/internal/collective"
	"repro/internal/eval"
	"repro/internal/sat"
	"repro/internal/synth"
	"repro/internal/topology"
)

func main() {
	table := flag.Int("table", 0, "regenerate table 3, 4 or 5")
	figure := flag.Int("figure", 0, "regenerate figure 4, 5 or 6")
	sweeps := flag.Bool("sweeps", false, "run the one-shot vs session Pareto sweep suite")
	all := flag.Bool("all", false, "regenerate everything")
	slow := flag.Bool("slow", false, "include slow synthesis instances")
	timeout := flag.Duration("timeout", 15*time.Minute, "per-instance synthesis timeout")
	workers := flag.Int("workers", 1, "concurrent row synthesis workers")
	portfolio := flag.Int("portfolio", 0, "diversified CDCL workers raced per slow solve (0/1 = off; results are byte-identical either way)")
	backendSpec := flag.String("backend", "cdcl", "solver backend: cdcl|smtlib[:binary]")
	noSymmetry := flag.Bool("no-symmetry", false, "disable node-orbit symmetry exploitation on large fabrics (frontier costs are identical either way; witnesses may differ)")
	noQuotient := flag.Bool("no-quotient", false, "disable the chunk-orbit quotient encoding (frontier costs are identical either way; witnesses may differ)")
	jsonOut := flag.Bool("json", false, "write machine-readable BENCH_*.json rows")
	flag.Parse()

	backend, err := synth.ParseBackend(*backendSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scclbench:", err)
		os.Exit(1)
	}
	// Rows go through a facade engine so identical budgets across tables
	// and repeated runs within one process hit the algorithm cache.
	eng := sccl.NewEngine(sccl.EngineOptions{Backend: backend, Workers: *workers, Portfolio: *portfolio, NoSymmetryBreaking: *noSymmetry, NoQuotient: *noQuotient})
	opts := eval.Options{
		Timeout:     *timeout,
		IncludeSlow: *slow,
		Workers:     *workers,
		Backend:     backend,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Synthesize: func(ctx context.Context, kind collective.Kind, topo *topology.Topology, root topology.Node, c, s, r int, o synth.Options) (*algorithm.Algorithm, sat.Status, error) {
			res, err := eng.Synthesize(ctx, sccl.Request{
				Kind: kind, Topo: topo, Root: root,
				Budget:  sccl.Budget{C: c, S: s, R: r},
				Options: &o,
			})
			if err != nil {
				return nil, sat.Unknown, err
			}
			return res.Algorithm, res.Status, nil
		},
	}
	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "scclbench:", err)
		os.Exit(1)
	}
	// tableJSONRow is the BENCH_tables.json row for one synthesized
	// table entry.
	type tableJSONRow struct {
		Table      int    `json:"table"`
		Topology   string `json:"topology"`
		Collective string `json:"collective"`
		C          int    `json:"c"`
		S          int    `json:"s"`
		R          int    `json:"r"`
		Optimality string `json:"optimality,omitempty"`
		Status     string `json:"status"`
		Skipped    bool   `json:"skipped,omitempty"`
		WallNs     int64  `json:"wallNs"`
		Workers    int    `json:"workers"`
		Backend    string `json:"backend"`
	}
	var tableRows []tableJSONRow
	collectTable := func(table int, topoName string, rows []eval.TableRow) {
		if !*jsonOut {
			return
		}
		for _, r := range rows {
			tableRows = append(tableRows, tableJSONRow{
				Table: table, Topology: topoName, Collective: r.Collective,
				C: r.C, S: r.S, R: r.R, Optimality: r.Optimality,
				Status: r.Status, Skipped: r.Skipped, WallNs: int64(r.Time),
				Workers: *workers, Backend: backend.Name(),
			})
		}
	}

	if *all || *table == 3 {
		ran = true
		rows, err := eval.Table3()
		if err != nil {
			fail(err)
		}
		fmt.Println("Table 3: NCCL hand-written collectives on DGX-1")
		fmt.Printf("%-28s %6s %6s %6s\n", "Collective", "C", "S", "R")
		for _, r := range rows {
			fmt.Printf("%-28s %6s %6s %6s\n", r.Collective, r.C, r.S, r.R)
		}
		fmt.Println()
	}
	if *all || *table == 4 {
		ran = true
		rows, err := eval.Table4(opts)
		if err != nil {
			fail(err)
		}
		collectTable(4, "dgx1", rows)
		fmt.Print(eval.FormatTable("Table 4: synthesized DGX-1 collectives", rows))
		fmt.Println()
	}
	if *all || *table == 5 {
		ran = true
		rows, err := eval.Table5(opts)
		if err != nil {
			fail(err)
		}
		collectTable(5, "amd-z52", rows)
		fmt.Print(eval.FormatTable("Table 5: synthesized AMD Z52 collectives", rows))
		fmt.Println()
	}
	if *all || *sweeps {
		ran = true
		progress := func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
		fmt.Println("Session sweep suite: one-shot vs incremental sessions")
		sweepRows, err := eval.RunSessionSweeps(eval.SessionSweeps(), backend, *workers, *timeout, progress)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			if err := eval.WriteBenchJSON("BENCH_sweeps.json", sweepRows); err != nil {
				fail(err)
			}
			fmt.Fprintln(os.Stderr, "wrote BENCH_sweeps.json")
		}
		fmt.Println()
	}
	if *all || *figure == 4 {
		ran = true
		fmt.Print(eval.Figure4().Format())
		fmt.Println()
	}
	if *all || *figure == 5 {
		ran = true
		fmt.Print(eval.Figure5().Format())
		fmt.Println()
	}
	if *all || *figure == 6 {
		ran = true
		fmt.Print(eval.Figure6().Format())
		fmt.Println()
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *jsonOut && len(tableRows) > 0 {
		if err := eval.WriteBenchJSON("BENCH_tables.json", tableRows); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "wrote BENCH_tables.json")
	}
	if cs := eng.CacheStats(); cs.Hits+cs.Misses > 0 {
		fmt.Fprintf(os.Stderr, "engine cache: %d algorithms, %d hits, %d misses\n",
			cs.Algorithms, cs.Hits, cs.Misses)
	}
}
