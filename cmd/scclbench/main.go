// Command scclbench regenerates the evaluation artifacts of the SCCL
// paper — Tables 3, 4 and 5 and Figures 4, 5 and 6 — from this
// repository's synthesizer, baselines and calibrated cost model, printing
// the same rows and series the paper reports.
//
// Usage:
//
//	scclbench -table 3          # NCCL baseline (C,S,R) table
//	scclbench -table 4          # DGX-1 synthesis table (paper Table 4)
//	scclbench -table 5          # AMD Z52 synthesis table (paper Table 5)
//	scclbench -figure 4|5|6     # speedup series
//	scclbench -all              # everything
//	scclbench -table 4 -slow    # include the minutes-long Alltoall row
//	scclbench -table 4 -workers 4          # synthesize rows concurrently
//	scclbench -table 5 -backend smtlib:z3  # discharge to an external solver
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	sccl "repro"
	"repro/internal/algorithm"
	"repro/internal/collective"
	"repro/internal/eval"
	"repro/internal/sat"
	"repro/internal/synth"
	"repro/internal/topology"
)

func main() {
	table := flag.Int("table", 0, "regenerate table 3, 4 or 5")
	figure := flag.Int("figure", 0, "regenerate figure 4, 5 or 6")
	all := flag.Bool("all", false, "regenerate everything")
	slow := flag.Bool("slow", false, "include slow synthesis instances")
	timeout := flag.Duration("timeout", 15*time.Minute, "per-instance synthesis timeout")
	workers := flag.Int("workers", 1, "concurrent row synthesis workers")
	backendSpec := flag.String("backend", "cdcl", "solver backend: cdcl|smtlib[:binary]")
	flag.Parse()

	backend, err := synth.ParseBackend(*backendSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scclbench:", err)
		os.Exit(1)
	}
	// Rows go through a facade engine so identical budgets across tables
	// and repeated runs within one process hit the algorithm cache.
	eng := sccl.NewEngine(sccl.EngineOptions{Backend: backend, Workers: *workers})
	opts := eval.Options{
		Timeout:     *timeout,
		IncludeSlow: *slow,
		Workers:     *workers,
		Backend:     backend,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Synthesize: func(ctx context.Context, kind collective.Kind, topo *topology.Topology, root topology.Node, c, s, r int, o synth.Options) (*algorithm.Algorithm, sat.Status, error) {
			res, err := eng.Synthesize(ctx, sccl.Request{
				Kind: kind, Topo: topo, Root: root,
				Budget:  sccl.Budget{C: c, S: s, R: r},
				Options: &o,
			})
			if err != nil {
				return nil, sat.Unknown, err
			}
			return res.Algorithm, res.Status, nil
		},
	}
	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "scclbench:", err)
		os.Exit(1)
	}

	if *all || *table == 3 {
		ran = true
		rows, err := eval.Table3()
		if err != nil {
			fail(err)
		}
		fmt.Println("Table 3: NCCL hand-written collectives on DGX-1")
		fmt.Printf("%-28s %6s %6s %6s\n", "Collective", "C", "S", "R")
		for _, r := range rows {
			fmt.Printf("%-28s %6s %6s %6s\n", r.Collective, r.C, r.S, r.R)
		}
		fmt.Println()
	}
	if *all || *table == 4 {
		ran = true
		rows, err := eval.Table4(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatTable("Table 4: synthesized DGX-1 collectives", rows))
		fmt.Println()
	}
	if *all || *table == 5 {
		ran = true
		rows, err := eval.Table5(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatTable("Table 5: synthesized AMD Z52 collectives", rows))
		fmt.Println()
	}
	if *all || *figure == 4 {
		ran = true
		fmt.Print(eval.Figure4().Format())
		fmt.Println()
	}
	if *all || *figure == 5 {
		ran = true
		fmt.Print(eval.Figure5().Format())
		fmt.Println()
	}
	if *all || *figure == 6 {
		ran = true
		fmt.Print(eval.Figure6().Format())
		fmt.Println()
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if cs := eng.CacheStats(); cs.Hits+cs.Misses > 0 {
		fmt.Fprintf(os.Stderr, "engine cache: %d algorithms, %d hits, %d misses\n",
			cs.Algorithms, cs.Hits, cs.Misses)
	}
}
