// Command scclload replays a mixed hit/miss workload against a running
// `sccl serve` daemon and reports what the serving layer is for:
//
//   - coalescing: K clients fire the same cold request at the same
//     instant; the daemon must run exactly one engine solve (verified
//     against the sccl_serve_solves_total counter) and hand every
//     client byte-identical response bodies;
//   - hit latency: the same request replayed against the warm cache,
//     reported as exact client-side p50/p99 and lookups/sec;
//   - mixed traffic: fresh budgets (misses) interleaved with replays
//     (hits), reporting the observed hit ratio.
//   - warm misses: by now the solve streak has tripped the daemon's
//     per-topology mega-base warmer; fresh sweep-shaped budgets are
//     answered by assumption pushes on the warm shared base, and the
//     phase reports their p50/p99 plus the mega-select delta.
//
// With -check it exits non-zero unless the acceptance bar holds:
// exactly one solve for the herd, identical bodies, and repeated-hit
// p99 at least -min-speedup times below the cold solve wall. The
// report is written as JSON to -out (or stdout).
//
// Usage:
//
//	sccl serve -addr localhost:7333 -library lib.json &
//	scclload -addr localhost:7333 -clients 8 -hits 200 -check
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	sccl "repro"
)

type coalesceReport struct {
	Clients         int            `json:"clients"`
	Solves          uint64         `json:"solves"`
	IdenticalBodies bool           `json:"identicalBodies"`
	ColdWallNs      int64          `json:"coldWallNs"`
	Sources         map[string]int `json:"sources"`
}

type hitReport struct {
	Requests      int     `json:"requests"`
	P50Ns         int64   `json:"p50Ns"`
	P99Ns         int64   `json:"p99Ns"`
	LookupsPerSec float64 `json:"lookupsPerSec"`
	AllHits       bool    `json:"allHits"`
}

type mixedReport struct {
	Requests int     `json:"requests"`
	Hits     int     `json:"hits"`
	Misses   int     `json:"misses"`
	HitRatio float64 `json:"hitRatio"`
}

// warmMissReport measures the daemon's warm mega-base: fresh
// sweep-shaped budgets (unseen fingerprints, so guaranteed misses)
// answered by assumption pushes on the base the solve streak warmed,
// instead of fresh Stage-1 encodes.
type warmMissReport struct {
	Requests int   `json:"requests"`
	P50Ns    int64 `json:"p50Ns"`
	P99Ns    int64 `json:"p99Ns"`
	// MegaLive reports whether sccl_engine_mega_sessions reached 1
	// before the poll deadline; MegaSelectsDelta counts how many of the
	// phase's probes the warm base actually answered.
	MegaLive         bool   `json:"megaLive"`
	MegaSelectsDelta uint64 `json:"megaSelectsDelta"`
}

type report struct {
	Addr       string         `json:"addr"`
	Topology   string         `json:"topology"`
	Collective string         `json:"collective"`
	Budget     string         `json:"budget"`
	Coalesce   coalesceReport `json:"coalesce"`
	Hit        hitReport      `json:"hit"`
	Mixed      mixedReport    `json:"mixed"`
	WarmMiss   warmMissReport `json:"warmMiss"`
	// SpeedupHitVsCold is coldWall / hit p99 — the factor the response
	// cache saves over re-solving.
	SpeedupHitVsCold float64 `json:"speedupHitVsCold"`
	Pass             bool    `json:"pass"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scclload:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:7333", "daemon address (host:port)")
	topoSpec := flag.String("topology", "bidir-ring:10", "topology spec")
	// The default instance is deliberately hard: Allgather at C=6 on a
	// 10-node bidirectional ring solves cold in seconds, so the report's
	// hit-vs-cold speedup measures the cache against a real solve, not
	// against HTTP overhead.
	collName := flag.String("collective", "Allgather", "collective kind")
	c := flag.Int("c", 6, "chunks per node")
	s := flag.Int("s", 6, "steps")
	r := flag.Int("r", 27, "rounds")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request solver timeout")
	clients := flag.Int("clients", 8, "concurrent identical clients in the coalesce phase")
	hits := flag.Int("hits", 200, "replays in the hit-latency phase")
	mixed := flag.Int("mixed", 12, "requests in the mixed phase (even split fresh/replayed)")
	warmMiss := flag.Int("warm-miss", 8, "requests in the warm-miss phase: fresh sweep-shaped budgets against the daemon's warmed mega-base (0 disables)")
	minSpeedup := flag.Float64("min-speedup", 100, "-check: required coldWall / hit-p99 factor")
	check := flag.Bool("check", false, "exit non-zero unless the acceptance bar holds")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	flag.Parse()

	topo, err := sccl.ParseTopology(*topoSpec)
	if err != nil {
		return err
	}
	kind, err := sccl.ParseKind(*collName)
	if err != nil {
		return err
	}
	makeBody := func(c, s, r int) ([]byte, error) {
		return sccl.EncodeRequest(sccl.Request{
			Kind: kind, Topo: topo,
			Budget:  sccl.Budget{C: c, S: s, R: r},
			Timeout: *timeout,
		})
	}
	body, err := makeBody(*c, *s, *r)
	if err != nil {
		return err
	}
	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout + 30*time.Second}

	rep := report{
		Addr: *addr, Topology: *topoSpec, Collective: *collName,
		Budget: fmt.Sprintf("C=%d S=%d R=%d", *c, *s, *r),
	}

	// Phase 1: thundering herd on one cold fingerprint.
	solvesBefore, err := scrapeCounter(client, base, "sccl_serve_solves_total")
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	type shot struct {
		body   []byte
		source string
		wall   time.Duration
		err    error
	}
	shots := make([]shot, *clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range shots {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			t0 := time.Now()
			b, src, err := post(client, base+"/v1/synthesize", body)
			shots[i] = shot{body: b, source: src, wall: time.Since(t0), err: err}
		}(i)
	}
	close(start)
	wg.Wait()
	rep.Coalesce.Clients = *clients
	rep.Coalesce.Sources = map[string]int{}
	rep.Coalesce.IdenticalBodies = true
	for i, sh := range shots {
		if sh.err != nil {
			return fmt.Errorf("coalesce client %d: %w", i, sh.err)
		}
		rep.Coalesce.Sources[sh.source]++
		if !bytes.Equal(sh.body, shots[0].body) {
			rep.Coalesce.IdenticalBodies = false
		}
		if ns := sh.wall.Nanoseconds(); ns > rep.Coalesce.ColdWallNs {
			rep.Coalesce.ColdWallNs = ns
		}
	}
	solvesAfter, err := scrapeCounter(client, base, "sccl_serve_solves_total")
	if err != nil {
		return err
	}
	rep.Coalesce.Solves = solvesAfter - solvesBefore

	// Phase 2: warm-cache replay latency.
	lat := make([]time.Duration, 0, *hits)
	rep.Hit.AllHits = true
	tPhase := time.Now()
	for i := 0; i < *hits; i++ {
		t0 := time.Now()
		_, src, err := post(client, base+"/v1/synthesize", body)
		if err != nil {
			return fmt.Errorf("hit replay %d: %w", i, err)
		}
		lat = append(lat, time.Since(t0))
		if src != "hit" {
			rep.Hit.AllHits = false
		}
	}
	phaseWall := time.Since(tPhase)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.Hit.Requests = len(lat)
	if n := len(lat); n > 0 {
		rep.Hit.P50Ns = lat[n/2].Nanoseconds()
		rep.Hit.P99Ns = lat[min(n-1, n*99/100)].Nanoseconds()
		rep.Hit.LookupsPerSec = float64(n) / phaseWall.Seconds()
	}

	// Phase 3: mixed traffic — fresh budgets force misses, replays hit.
	for i := 0; i < *mixed; i++ {
		var b []byte
		if i%2 == 0 {
			// A fresh fingerprint: grow the round budget past anything
			// requested so far (larger budgets stay satisfiable once the
			// base budget is).
			b, err = makeBody(*c, *s, *r+1+i/2)
		} else {
			b = body
		}
		if err != nil {
			return err
		}
		_, src, err := post(client, base+"/v1/synthesize", b)
		if err != nil {
			return fmt.Errorf("mixed request %d: %w", i, err)
		}
		rep.Mixed.Requests++
		if src == "hit" {
			rep.Mixed.Hits++
		} else {
			rep.Mixed.Misses++
		}
	}
	if rep.Mixed.Requests > 0 {
		rep.Mixed.HitRatio = float64(rep.Mixed.Hits) / float64(rep.Mixed.Requests)
	}

	// Phase 4: warm-miss latency. By now the solve streak has tripped the
	// daemon's per-topology mega-base warmer; wait for the base to come
	// live, then issue fresh sweep-shaped budgets (small C and k, unseen
	// fingerprints — the earlier phases only used C=c at S=s) whose cache
	// misses are answered by assumption pushes on the warm base.
	if *warmMiss > 0 {
		deadline := time.Now().Add(30 * time.Second)
		for {
			live, err := scrapeCounter(client, base, "sccl_engine_mega_sessions")
			if err != nil {
				return fmt.Errorf("polling for mega-base warm: %w", err)
			}
			if live >= 1 {
				rep.WarmMiss.MegaLive = true
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(500 * time.Millisecond)
		}
		selBefore, err := scrapeCounter(client, base, "sccl_engine_mega_selects_total")
		if err != nil {
			return err
		}
		warmS := *s - 1
		if warmS < 1 {
			warmS = 1
		}
		wlat := make([]time.Duration, 0, *warmMiss)
		for i := 0; i < *warmMiss; i++ {
			// C cycles 1..4 and R grows every full cycle, so every
			// fingerprint is fresh and stays inside the warmer's clamped
			// (C<=4, k<=4) window.
			b, err := makeBody(1+i%4, warmS, warmS+1+i/4)
			if err != nil {
				return err
			}
			t0 := time.Now()
			_, src, err := post(client, base+"/v1/synthesize", b)
			if err != nil {
				return fmt.Errorf("warm-miss request %d: %w", i, err)
			}
			if src == "hit" {
				return fmt.Errorf("warm-miss request %d unexpectedly hit the response cache", i)
			}
			wlat = append(wlat, time.Since(t0))
		}
		selAfter, err := scrapeCounter(client, base, "sccl_engine_mega_selects_total")
		if err != nil {
			return err
		}
		rep.WarmMiss.MegaSelectsDelta = selAfter - selBefore
		sort.Slice(wlat, func(i, j int) bool { return wlat[i] < wlat[j] })
		rep.WarmMiss.Requests = len(wlat)
		if n := len(wlat); n > 0 {
			rep.WarmMiss.P50Ns = wlat[n/2].Nanoseconds()
			rep.WarmMiss.P99Ns = wlat[min(n-1, n*99/100)].Nanoseconds()
		}
	}

	if rep.Hit.P99Ns > 0 {
		rep.SpeedupHitVsCold = float64(rep.Coalesce.ColdWallNs) / float64(rep.Hit.P99Ns)
	}
	warmOK := *warmMiss == 0 ||
		(rep.WarmMiss.MegaLive && rep.WarmMiss.MegaSelectsDelta > 0)
	rep.Pass = rep.Coalesce.Solves == 1 &&
		rep.Coalesce.IdenticalBodies &&
		rep.Hit.AllHits &&
		rep.Mixed.Hits > 0 &&
		rep.SpeedupHitVsCold >= *minSpeedup &&
		warmOK

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(data)
	}
	fmt.Fprintf(os.Stderr,
		"coalesce: %d clients -> %d solve(s), identical=%v, cold %.1fms | hits: p50 %.2fms p99 %.2fms (%.0f lookups/s) | warm-miss: mega=%v p50 %.2fms selects+%d | speedup %.0fx | pass=%v\n",
		rep.Coalesce.Clients, rep.Coalesce.Solves, rep.Coalesce.IdenticalBodies,
		float64(rep.Coalesce.ColdWallNs)/1e6, float64(rep.Hit.P50Ns)/1e6,
		float64(rep.Hit.P99Ns)/1e6, rep.Hit.LookupsPerSec,
		rep.WarmMiss.MegaLive, float64(rep.WarmMiss.P50Ns)/1e6, rep.WarmMiss.MegaSelectsDelta,
		rep.SpeedupHitVsCold, rep.Pass)
	if *check && !rep.Pass {
		return fmt.Errorf("acceptance check failed (solves=%d identical=%v allHits=%v mixedHits=%d speedup=%.1f < %.0f megaLive=%v megaSelects+%d)",
			rep.Coalesce.Solves, rep.Coalesce.IdenticalBodies, rep.Hit.AllHits,
			rep.Mixed.Hits, rep.SpeedupHitVsCold, *minSpeedup,
			rep.WarmMiss.MegaLive, rep.WarmMiss.MegaSelectsDelta)
	}
	return nil
}

// post sends one JSON document and returns the response body and the
// X-SCCL-Cache header ("hit", "miss", or "coalesced").
func post(client *http.Client, url string, body []byte) ([]byte, string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, resp.Header.Get("X-SCCL-Cache"), nil
}

// scrapeCounter reads one counter from the daemon's /metrics text.
func scrapeCounter(client *http.Client, base, name string) (uint64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("metric %s not found at %s/metrics", name, base)
}
