package sccl_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	sccl "repro"
)

// synthKind finds a small Sat budget for kind on topo by probing
// ascending budgets — keeps the matrix robust without hard-coding each
// topology's feasible triples.
func synthKind(t *testing.T, eng *sccl.Engine, kind sccl.Kind, topo *sccl.Topology, c int) *sccl.Algorithm {
	t.Helper()
	for s := 1; s <= topo.P+2; s++ {
		for r := s; r <= s+2*topo.P; r++ {
			res, err := eng.Synthesize(nil, sccl.Request{
				Kind: kind, Topo: topo, Budget: sccl.Budget{C: c, S: s, R: r},
			})
			if err != nil {
				t.Fatalf("%v (%d,%d,%d): %v", kind, c, s, r, err)
			}
			if res.Status == sccl.Sat {
				return res.Algorithm
			}
		}
	}
	t.Fatalf("no Sat budget found for %v on %s", kind, topo.Name)
	return nil
}

// TestJSONRoundTrip covers the acceptance matrix: for every collective
// kind, Algorithm/Topology/Collective encode to stable JSON, decode with
// re-validation, compare equal, and re-encode byte-identically.
func TestJSONRoundTrip(t *testing.T) {
	eng := sccl.NewEngine(sccl.EngineOptions{})
	topo := sccl.FullyConnected(3)

	// Topology round-trip across every exported constructor shape.
	topos := []*sccl.Topology{
		topo, sccl.DGX1(), sccl.DGX2(), sccl.AMDZ52(), sccl.Ring(5),
		sccl.BidirRing(4), sccl.Line(3), sccl.Star(4), sccl.Hypercube(3),
		sccl.Torus2D(2, 3), sccl.SharedBus(4, 2),
	}
	if mn, err := sccl.MultiNode(sccl.Ring(4), 2, 1, 1); err != nil {
		t.Fatal(err)
	} else {
		topos = append(topos, mn)
	}
	for _, tp := range topos {
		data, err := sccl.EncodeTopology(tp)
		if err != nil {
			t.Fatalf("%s: %v", tp.Name, err)
		}
		dec, err := sccl.DecodeTopology(data)
		if err != nil {
			t.Fatalf("%s: %v", tp.Name, err)
		}
		if !reflect.DeepEqual(tp, dec) {
			t.Errorf("%s: decoded topology differs", tp.Name)
		}
		data2, err := sccl.EncodeTopology(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Errorf("%s: re-encode not byte-identical", tp.Name)
		}
	}

	// Collective + Algorithm round-trips for every kind. Allreduce needs
	// C divisible by P; everything else uses C=1.
	for _, kind := range []sccl.Kind{
		sccl.Gather, sccl.Allgather, sccl.Alltoall, sccl.Broadcast,
		sccl.Scatter, sccl.Reduce, sccl.Reducescatter, sccl.Allreduce,
	} {
		c := 1
		if kind == sccl.Allreduce {
			c = topo.P
		}
		coll, err := sccl.NewCollective(kind, topo.P, c, 0)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		cdata, err := sccl.EncodeCollective(coll)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		cdec, err := sccl.DecodeCollective(cdata)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !reflect.DeepEqual(coll, cdec) {
			t.Errorf("%v: decoded collective differs", kind)
		}
		if coll.Fingerprint() != cdec.Fingerprint() {
			t.Errorf("%v: collective fingerprint changed across round-trip", kind)
		}

		alg := synthKind(t, eng, kind, topo, c)
		adata, err := sccl.EncodeAlgorithm(alg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		adec, err := sccl.DecodeAlgorithm(adata)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !reflect.DeepEqual(alg, adec) {
			t.Errorf("%v: decoded algorithm differs", kind)
		}
		adata2, err := sccl.EncodeAlgorithm(adec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(adata, adata2) {
			t.Errorf("%v: algorithm re-encode not byte-identical", kind)
		}
	}

	// Custom collectives (AllgatherV) round-trip through the same format.
	agv, err := sccl.AllgatherV(3, []int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cdata, err := sccl.EncodeCollective(agv)
	if err != nil {
		t.Fatal(err)
	}
	cdec, err := sccl.DecodeCollective(cdata)
	if err != nil {
		t.Fatal(err)
	}
	if cdec.G != agv.G || cdec.P != agv.P || agv.Fingerprint() != cdec.Fingerprint() {
		t.Error("custom collective round-trip differs")
	}
}

// TestJSONRoundTripRequestResult covers the Request/Result documents and
// the frontier format.
func TestJSONRoundTripRequestResult(t *testing.T) {
	eng := sccl.NewEngine(sccl.EngineOptions{})
	topo := sccl.BidirRing(4)
	req := sccl.Request{
		Kind: sccl.Allgather, Topo: topo,
		Budget:  sccl.Budget{C: 1, S: 2, R: 3},
		Timeout: 30 * time.Second,
	}
	rdata, err := sccl.EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	rdec, err := sccl.DecodeRequest(rdata)
	if err != nil {
		t.Fatal(err)
	}
	if rdec.Kind != req.Kind || rdec.Budget != req.Budget || rdec.Timeout != req.Timeout ||
		!reflect.DeepEqual(rdec.Topo, req.Topo) {
		t.Error("decoded request differs")
	}

	res, err := eng.Synthesize(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sccl.Sat {
		t.Fatalf("status %v", res.Status)
	}
	data, err := sccl.EncodeResult(*res)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sccl.DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != res.Status || dec.Fingerprint != res.Fingerprint ||
		!reflect.DeepEqual(dec.Algorithm, res.Algorithm) {
		t.Error("decoded result differs")
	}
	data2, err := sccl.EncodeResult(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("result re-encode not byte-identical")
	}

	// Frontier round-trip (small sweep; wall clocks zeroed for the byte
	// comparison since SynthesisTime is nondeterministic).
	front, err := eng.Pareto(nil, sccl.ParetoRequest{
		Kind: sccl.Allgather, Topo: sccl.Ring(3), MaxSteps: 3, MaxChunks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := append([]sccl.ParetoPoint(nil), front.Points...)
	for i := range pts {
		pts[i].SynthesisTime = 0
	}
	fdata, err := sccl.EncodeFrontier(pts)
	if err != nil {
		t.Fatal(err)
	}
	fdec, err := sccl.DecodeFrontier(fdata)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, fdec) {
		t.Error("decoded frontier differs")
	}
	fdata2, err := sccl.EncodeFrontier(fdec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fdata, fdata2) {
		t.Error("frontier re-encode not byte-identical")
	}
}

// TestJSONDecodeRejectsInvalid checks that decoding re-validates: a
// tampered document must fail instead of yielding an invalid value.
func TestJSONDecodeRejectsInvalid(t *testing.T) {
	if _, err := sccl.DecodeTopology([]byte(`{"format":"sccl.topology/v1","payload":{"version":1,"name":"bad","p":2,"relations":[{"links":[[0,5]],"bandwidth":1}]}}`)); err == nil {
		t.Error("out-of-range link accepted")
	}
	if _, err := sccl.DecodeTopology([]byte(`{"format":"sccl.algorithm/v1","payload":{}}`)); err == nil {
		t.Error("wrong envelope format accepted")
	}
	if _, err := sccl.DecodeTopology([]byte(`{"format":"sccl.topology/v1","payload":{"version":99,"name":"x","p":2}}`)); err == nil {
		t.Error("future version accepted")
	}
	// Libraries only persist settled verdicts: an Unknown entry would be
	// served as a cache hit forever.
	if _, err := sccl.DecodeLibrary([]byte(`{"format":"sccl.library/v1","entries":[{"fingerprint":"x","kind":"Allgather","topology":"ring","budget":{"c":1,"s":2,"r":2},"status":"UNKNOWN"}]}`)); err == nil {
		t.Error("UNKNOWN library entry accepted")
	}
	// An algorithm whose sends violate its own collective must fail the
	// re-validation pass.
	eng := sccl.NewEngine(sccl.EngineOptions{})
	res, err := eng.Synthesize(nil, sccl.Request{
		Kind: sccl.Allgather, Topo: sccl.Ring(3),
		Budget: sccl.Budget{C: 1, S: 2, R: 2},
	})
	if err != nil || res.Status != sccl.Sat {
		t.Fatalf("setup synthesis: %v %v", res, err)
	}
	data, err := sccl.EncodeAlgorithm(res.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"rounds":[`), []byte(`"rounds":[0,`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper pattern did not apply")
	}
	if _, err := sccl.DecodeAlgorithm(tampered); err == nil {
		t.Error("tampered algorithm accepted")
	}
}
