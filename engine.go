package sccl

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/collective"
	"repro/internal/synth"
)

// EngineOptions configures a synthesis Engine.
type EngineOptions struct {
	// Backend is the solver backend shared by every request; nil selects
	// the built-in CDCL solver. Per-request overrides go through
	// Request.Options.
	Backend Backend
	// Workers sizes the worker pool used by SynthesizeAll and as the
	// default Pareto probe concurrency; values < 1 select the number of
	// CPUs.
	Workers int
	// Progress, if non-nil, receives engine and probe progress lines.
	// Calls are serialized, so the sink never runs concurrently with
	// itself.
	Progress func(format string, args ...any)
	// Timeout is the default per-request solver timeout (0 = none).
	Timeout time.Duration
	// CacheSize caps the number of cached algorithm entries: 0 selects
	// the default (4096), negative is unbounded. Oldest entries are
	// evicted first.
	CacheSize int
	// DisableCache turns the algorithm and frontier caches off entirely.
	DisableCache bool
	// NoSessions disables the engine's pooled incremental solver
	// sessions: every Pareto probe then solves one-shot. Frontiers are
	// byte-identical either way; sessions only change how fast the sweep
	// discharges closely related probes.
	NoSessions bool
	// SessionPoolSize caps how many per-family solver sessions the engine
	// keeps live across sweeps; 0 selects the default (32), negative
	// disables pooling like NoSessions. A sweep keeps one session per
	// probed chunk count, so on topologies where 2*P exceeds this cap
	// raise it (or sessions thrash the pool and never warm up).
	SessionPoolSize int
	// Portfolio, when > 1, enables intra-instance parallelism by default
	// for every solve the engine runs — sweep probes and one-shot
	// requests alike: a solve whose wall crosses PortfolioThreshold
	// escalates into a race of that many CDCL solvers (canonical leader
	// plus diversified replicas with vetted learnt sharing). Results and
	// frontiers stay byte-identical; see SynthOptions.Portfolio.
	// Per-request overrides go through Request.Options.
	Portfolio int
	// PortfolioThreshold is the default escalation threshold (0 selects
	// the built-in default of 100ms).
	PortfolioThreshold time.Duration
	// CubeDepth, with Portfolio > 1, switches escalated races to
	// cube-and-conquer over 2^CubeDepth lookahead-chosen cubes.
	CubeDepth int
	// NoSymmetryBreaking disables node-orbit symmetry exploitation (the
	// guarded automorphism-equivariance restriction emitted on large
	// fabrics; see SynthOptions.NoSymmetryBreaking) for every request the
	// engine runs.
	// Frontier (C, S, R) points are identical either way; witnesses may
	// differ, so the flag IS part of the cache fingerprint.
	NoSymmetryBreaking bool
	// NoQuotient disables the chunk-orbit quotient encoding (emit only
	// orbit-representative variables, lift Sat models back to the full
	// fabric; see SynthOptions.NoQuotient) for every request the engine
	// runs. Frontier (C, S, R) points are identical either way — the
	// quotient only answers when its answer is genuine — but witnesses
	// may differ, so the flag IS part of the cache fingerprint.
	NoQuotient bool
}

const defaultCacheSize = 4096

// maxFrontierEntries bounds the frontier cache; sweeps are few and large
// compared to single algorithms.
const maxFrontierEntries = 256

// cacheEntry is one cached synthesis outcome (Sat or Unsat; Unknown —
// budget exhaustion or cancellation — is never cached).
type cacheEntry struct {
	status   Status
	alg      *Algorithm // nil for Unsat
	kind     string
	topoName string
	root     int
	budget   Budget
}

// Engine is the sessionful entry point to the synthesizer: it owns a
// solver Backend, a worker pool, a progress sink, and an in-memory
// algorithm cache keyed by canonical fingerprints of (topology,
// collective, budget, lowering-relevant options). Engines are safe for
// concurrent use; cached algorithms are shared and must be treated as
// immutable.
//
// Engine.Synthesize, Engine.Pareto and Engine.SynthesizeAll are the
// primary entry points; the package-level free functions are deprecated
// wrappers over DefaultEngine.
type Engine struct {
	backend    Backend
	workers    int
	timeout    time.Duration
	progress   func(format string, args ...any)
	cacheCap   int
	cacheOff   bool
	noSessions bool
	// Portfolio defaults applied to sweeps that do not override them
	// through Request.Options (see EngineOptions.Portfolio).
	portfolio          int
	portfolioThreshold time.Duration
	cubeDepth          int
	noSymmetry         bool
	noQuotient         bool
	// sessions pools per-family incremental solver sessions across Pareto
	// sweeps (nil when the backend cannot session or sessions are off).
	sessions *synth.SessionPool

	mu            sync.Mutex
	algs          map[string]*cacheEntry
	algOrder      []string
	frontiers     map[string][]ParetoPoint
	frontierOrder []string
	hits, misses  uint64
	// coreSolves / prunedProbes aggregate the unsat-core counters of
	// every sweep the engine ran (see ParetoStats).
	coreSolves   uint64
	prunedProbes uint64
	// templateHits / migratedLearnts aggregate the staged-encoder
	// counters: Stage-0 template shares and learnt clauses carried across
	// session re-bases (see ParetoStats and Stage0Template).
	templateHits    uint64
	migratedLearnts uint64
	// portfolioSolves / sharedLearnts / cubeSplits aggregate the
	// intra-instance parallelism counters of every sweep (see
	// ParetoStats); merged under mu after each sweep returns, never
	// touched by probe or replica workers.
	portfolioSolves uint64
	sharedLearnts   uint64
	cubeSplits      uint64
	// megaSelects / megaEncodes aggregate the per-topology mega-base
	// counters: probes discharged by assumption over a shared pooled base,
	// and base formulas built (see synth.MegaSession).
	megaSelects uint64
	megaEncodes uint64
}

// NewEngine builds an Engine from options; the zero EngineOptions value
// selects the built-in CDCL backend, one worker per CPU, and a bounded
// cache.
func NewEngine(opts EngineOptions) *Engine {
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	cacheCap := opts.CacheSize
	if cacheCap == 0 {
		cacheCap = defaultCacheSize
	}
	e := &Engine{
		backend:    opts.Backend,
		workers:    workers,
		timeout:    opts.Timeout,
		progress:   synth.SerializedProgress(opts.Progress),
		cacheCap:   cacheCap,
		cacheOff:   opts.DisableCache,
		noSessions: opts.NoSessions || opts.SessionPoolSize < 0,
		algs:       map[string]*cacheEntry{},
		frontiers:  map[string][]ParetoPoint{},

		portfolio:          opts.Portfolio,
		portfolioThreshold: opts.PortfolioThreshold,
		cubeDepth:          opts.CubeDepth,
		noSymmetry:         opts.NoSymmetryBreaking,
		noQuotient:         opts.NoQuotient,
	}
	if !opts.NoSessions && opts.SessionPoolSize >= 0 {
		resolved := e.backend
		if resolved == nil {
			resolved = synth.NewCDCLBackend()
		}
		if sb, ok := resolved.(synth.SessionBackend); ok {
			e.sessions = synth.NewSessionPool(sb, opts.SessionPoolSize)
		}
	}
	return e
}

// Close releases the engine's pooled solver sessions (and their learned
// state). The engine itself stays usable: later sweeps simply solve
// without cross-sweep session reuse.
func (e *Engine) Close() error {
	if e.sessions == nil {
		return nil
	}
	return e.sessions.Close()
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the shared process-wide engine that the
// deprecated package-level free functions delegate to.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine(EngineOptions{}) })
	return defaultEngine
}

// solveOptions merges the engine defaults with a per-request override
// and timeout (request timeout wins over the override's, which wins over
// the engine default).
func (e *Engine) solveOptions(timeout time.Duration, override *SynthOptions) SynthOptions {
	var o SynthOptions
	if override != nil {
		o = *override
	}
	if o.Backend == nil {
		o.Backend = e.backend
	}
	if timeout > 0 {
		o.Timeout = timeout
	} else if o.Timeout == 0 {
		o.Timeout = e.timeout
	}
	// Engine portfolio defaults, applied to one-shot requests and sweeps
	// alike. Cache fingerprints exclude these fields (like Workers):
	// portfolio races are leader-anchored, so results and frontiers are
	// byte-identical with and without them.
	if o.Portfolio == 0 {
		o.Portfolio = e.portfolio
	}
	if o.PortfolioThreshold == 0 {
		o.PortfolioThreshold = e.portfolioThreshold
	}
	if o.CubeDepth == 0 {
		o.CubeDepth = e.cubeDepth
	}
	if e.noSymmetry {
		o.NoSymmetryBreaking = true
	}
	if e.noQuotient {
		o.NoQuotient = true
	}
	return o
}

func backendName(o SynthOptions) string {
	if o.Backend == nil {
		return "cdcl"
	}
	return o.Backend.Name()
}

func fingerprintKey(parts ...string) string {
	sum := sha256.Sum256([]byte(strings.Join(parts, "|")))
	return hex.EncodeToString(sum[:16])
}

// optionParts renders the lowering-relevant solver options that change
// which algorithm a solve produces. Timeout and conflict budgets are
// excluded: they can only turn an answer into Unknown, and Unknown is
// never cached.
func optionParts(o SynthOptions) []string {
	return []string{
		"enc=" + strconv.Itoa(int(o.Encoding)),
		"sym=" + strconv.FormatBool(!o.NoSymmetryBreak),
		"nodesym=" + strconv.FormatBool(!o.NoSymmetryBreaking),
		"quotient=" + strconv.FormatBool(!o.NoQuotient),
		"backend=" + backendName(o),
	}
}

// requestFingerprint is the canonical algorithm-cache key of a request
// under resolved solver options.
func (e *Engine) requestFingerprint(req Request, o SynthOptions) string {
	parts := append([]string{
		"request/v1",
		req.Kind.String(),
		req.Topo.Fingerprint(),
		strconv.Itoa(int(req.Root)),
		req.Budget.String(),
	}, optionParts(o)...)
	return fingerprintKey(parts...)
}

// Fingerprint returns the canonical fingerprint of a request under the
// engine's resolved solver options — the key Engine.Synthesize caches
// its outcome under and Engine.CachedEntry looks up. Serving layers use
// it to coalesce concurrent identical requests and to key response
// caches without solving anything.
func (e *Engine) Fingerprint(req Request) (string, error) {
	if err := req.Validate(); err != nil {
		return "", err
	}
	o := e.solveOptions(req.Timeout, req.Options)
	return e.requestFingerprint(req, o), nil
}

// paretoKey resolves a sweep request's enumeration defaults and solver
// options and returns its canonical frontier-cache fingerprint — shared
// by Engine.Pareto and Engine.ParetoFingerprint so the two can never
// disagree on the key.
func (e *Engine) paretoKey(req ParetoRequest) (fp string, o SynthOptions, maxSteps, maxChunks int) {
	maxSteps = req.MaxSteps
	if maxSteps == 0 {
		maxSteps = req.Topo.P + 2
	}
	maxChunks = req.MaxChunks
	if maxChunks == 0 {
		maxChunks = 2 * req.Topo.P
	}
	o = e.solveOptions(req.Timeout, req.Options)
	parts := append([]string{
		"pareto/v1",
		req.Kind.String(),
		req.Topo.Fingerprint(),
		strconv.Itoa(int(req.Root)),
		strconv.Itoa(req.K),
		strconv.Itoa(maxSteps),
		strconv.Itoa(maxChunks),
	}, optionParts(o)...)
	fp = fingerprintKey(parts...)
	return fp, o, maxSteps, maxChunks
}

// ParetoFingerprint returns the canonical frontier-cache fingerprint of
// a sweep request under the engine's resolved solver options. Workers
// and NoSessions are excluded: they change scheduling, never the
// frontier.
func (e *Engine) ParetoFingerprint(req ParetoRequest) (string, error) {
	if err := req.Validate(); err != nil {
		return "", err
	}
	fp, _, _, _ := e.paretoKey(req)
	return fp, nil
}

// CachedEntry returns the engine's cached outcome for a canonical
// request fingerprint as a library entry, or ok == false when the
// fingerprint is unknown (or the cache is off). The lookup does not
// touch the hit/miss counters — serving layers keep their own — and the
// embedded algorithm is shared with the cache, so it must be treated as
// immutable.
func (e *Engine) CachedEntry(fp string) (LibraryEntry, bool) {
	ent := e.peekAlg(fp)
	if ent == nil {
		return LibraryEntry{}, false
	}
	return LibraryEntry{
		Fingerprint: fp,
		Kind:        ent.kind,
		Topology:    ent.topoName,
		Root:        ent.root,
		Budget:      ent.budget,
		Status:      ent.status.String(),
		Algorithm:   ent.alg,
	}, true
}

func (e *Engine) lookupAlg(key string) *cacheEntry {
	if e.cacheOff {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.algs[key]
	if ok {
		e.hits++
	} else {
		e.misses++
	}
	return ent
}

// peekAlg is lookupAlg without the hit/miss accounting — for planning
// decisions (e.g. whether a batch group needs solver work at all) that
// must not double-count the lookup answerRequest will do.
func (e *Engine) peekAlg(key string) *cacheEntry {
	if e.cacheOff {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.algs[key]
}

func (e *Engine) storeAlg(key string, ent *cacheEntry) {
	if e.cacheOff {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.algs[key]; !exists {
		for e.cacheCap > 0 && len(e.algs) >= e.cacheCap && len(e.algOrder) > 0 {
			oldest := e.algOrder[0]
			e.algOrder = e.algOrder[1:]
			delete(e.algs, oldest)
		}
		e.algOrder = append(e.algOrder, key)
	}
	e.algs[key] = ent
}

func (e *Engine) lookupFrontier(key string) ([]ParetoPoint, bool) {
	if e.cacheOff {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	pts, ok := e.frontiers[key]
	if ok {
		e.hits++
	} else {
		e.misses++
	}
	return pts, ok
}

func (e *Engine) storeFrontier(key string, pts []ParetoPoint) {
	if e.cacheOff {
		return
	}
	// Keep a private copy: the caller owns the slice it was handed.
	pts = append([]ParetoPoint(nil), pts...)
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.frontiers[key]; !exists {
		for len(e.frontiers) >= maxFrontierEntries && len(e.frontierOrder) > 0 {
			oldest := e.frontierOrder[0]
			e.frontierOrder = e.frontierOrder[1:]
			delete(e.frontiers, oldest)
		}
		e.frontierOrder = append(e.frontierOrder, key)
	}
	e.frontiers[key] = pts
}

// CacheStats reports the engine cache state and hit counters.
type CacheStats struct {
	// Algorithms is the number of cached synthesis outcomes.
	Algorithms int
	// Frontiers is the number of cached Pareto frontiers.
	Frontiers int
	Hits      uint64
	Misses    uint64
	// Sessions is the number of live pooled solver sessions; SessionHits
	// and SessionMisses count pool lookups across sweeps.
	Sessions      int
	SessionHits   uint64
	SessionMisses uint64
	// CoreSolves and PrunedProbes aggregate the unsat-core counters of
	// every sweep the engine ran: Unsat probes whose final-conflict
	// analysis produced a budget core, and candidates those cores let the
	// scheduler answer without solving (see ParetoStats).
	CoreSolves   uint64
	PrunedProbes uint64
	// TemplateHits counts encodes that shared a Stage-0 routing template
	// (per (topology, step horizon), across families) instead of
	// re-deriving it; MigratedLearnts counts learnt clauses translated
	// into a rebuilt session solver across re-bases instead of dropped.
	TemplateHits    uint64
	MigratedLearnts uint64
	// PortfolioSolves, SharedLearnts and CubeSplits aggregate the
	// intra-instance parallelism counters of every sweep: probes that
	// escalated into a solver race, vetted learnt clauses the replicas
	// imported, and cubes raced by cube-and-conquer (see ParetoStats).
	PortfolioSolves uint64
	SharedLearnts   uint64
	CubeSplits      uint64
	// MegaSessions is the number of live per-topology mega-base sessions
	// in the pool; MegaSelects counts probes they discharged by assumption
	// push (vs MegaEncodes fresh base constructions — the encode work the
	// shared base amortizes away; see synth.MegaSession).
	MegaSessions int
	MegaSelects  uint64
	MegaEncodes  uint64
}

// Delta returns the counter movement from an earlier snapshot prev of
// the same engine to s: monotonic counters (hits, misses, session and
// solver counters) are subtracted, while the point-in-time gauges
// (Algorithms, Frontiers, Sessions) keep s's current value. A metrics
// exporter can therefore report windowed rates from two CacheStats
// calls without holding any engine lock across the window. Counters
// that appear to have moved backwards (prev from a different engine, or
// taken later than s) clamp to zero rather than underflowing.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	sub := func(cur, old uint64) uint64 {
		if cur < old {
			return 0
		}
		return cur - old
	}
	return CacheStats{
		Algorithms:      s.Algorithms,
		Frontiers:       s.Frontiers,
		Sessions:        s.Sessions,
		Hits:            sub(s.Hits, prev.Hits),
		Misses:          sub(s.Misses, prev.Misses),
		SessionHits:     sub(s.SessionHits, prev.SessionHits),
		SessionMisses:   sub(s.SessionMisses, prev.SessionMisses),
		CoreSolves:      sub(s.CoreSolves, prev.CoreSolves),
		PrunedProbes:    sub(s.PrunedProbes, prev.PrunedProbes),
		TemplateHits:    sub(s.TemplateHits, prev.TemplateHits),
		MigratedLearnts: sub(s.MigratedLearnts, prev.MigratedLearnts),
		PortfolioSolves: sub(s.PortfolioSolves, prev.PortfolioSolves),
		SharedLearnts:   sub(s.SharedLearnts, prev.SharedLearnts),
		CubeSplits:      sub(s.CubeSplits, prev.CubeSplits),
		MegaSessions:    s.MegaSessions,
		MegaSelects:     sub(s.MegaSelects, prev.MegaSelects),
		MegaEncodes:     sub(s.MegaEncodes, prev.MegaEncodes),
	}
}

// CacheStats returns a snapshot of the cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	cs := CacheStats{
		Algorithms:      len(e.algs),
		Frontiers:       len(e.frontiers),
		Hits:            e.hits,
		Misses:          e.misses,
		CoreSolves:      e.coreSolves,
		PrunedProbes:    e.prunedProbes,
		TemplateHits:    e.templateHits,
		MigratedLearnts: e.migratedLearnts,
		PortfolioSolves: e.portfolioSolves,
		SharedLearnts:   e.sharedLearnts,
		CubeSplits:      e.cubeSplits,
		MegaSelects:     e.megaSelects,
		MegaEncodes:     e.megaEncodes,
	}
	e.mu.Unlock()
	if e.sessions != nil {
		cs.Sessions = e.sessions.Len()
		cs.SessionHits, cs.SessionMisses = e.sessions.Stats()
		cs.MegaSessions = e.sessions.MegaLen()
	}
	return cs
}

// answerRequest serves one validated request through the algorithm
// cache: a hit returns the stored entry with no solver work; otherwise
// solve runs and any definite outcome (Sat or Unsat, never Unknown) is
// stored under the request's canonical fingerprint. Shared by the
// single-request and batched paths so cache semantics cannot diverge.
func (e *Engine) answerRequest(ctx context.Context, req Request, o SynthOptions, solve func(context.Context) (*Algorithm, Status, error)) (*Result, error) {
	t0 := time.Now()
	fp := e.requestFingerprint(req, o)
	if ent := e.lookupAlg(fp); ent != nil {
		e.progress("engine: cache hit %v %s on %s [%s]", req.Kind, req.Budget, req.Topo.Name, fp)
		return &Result{Algorithm: ent.alg, Status: ent.status, CacheHit: true, Wall: time.Since(t0), Fingerprint: fp}, nil
	}
	alg, status, err := solve(ctx)
	if err != nil {
		return nil, err
	}
	if status != Unknown {
		e.storeAlg(fp, &cacheEntry{
			status: status, alg: alg,
			kind: req.Kind.String(), topoName: req.Topo.Name, root: int(req.Root), budget: req.Budget,
		})
	}
	return &Result{Algorithm: alg, Status: status, Wall: time.Since(t0), Fingerprint: fp}, nil
}

// Synthesize answers one request: on a cache hit the stored algorithm is
// returned with Result.CacheHit set and no solver work; otherwise the
// instance is discharged to the backend and the outcome (Sat or Unsat,
// never Unknown) is cached under the request's canonical fingerprint.
func (e *Engine) Synthesize(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	o := e.solveOptions(req.Timeout, req.Options)
	return e.answerRequest(ctx, req, o, func(ctx context.Context) (*Algorithm, Status, error) {
		// A warm per-topology mega-base session (left by an earlier sweep
		// or a daemon's WarmMegaBase) answers a covered cache miss by
		// assumption push + solve instead of encode + solve. The lookup
		// never builds: cold topologies stay on the one-shot path.
		if v := e.megaView(req, o); v != nil {
			sres, err := v.Solve(ctx, req.Budget.S, req.Budget.R, o)
			if err == nil {
				e.mu.Lock()
				e.templateHits += uint64(sres.TemplateHits)
				if sres.MegaProbe {
					e.megaSelects++
				}
				e.megaEncodes += uint64(sres.MegaEncodes)
				e.mu.Unlock()
				return sres.Algorithm, sres.Status, nil
			}
			// Session route failed (e.g. pool closed mid-flight): fall
			// through to the one-shot path rather than surfacing it.
		}
		return synth.SynthesizeCollectiveContext(ctx, req.Kind, req.Topo, req.Root, req.Budget.C, req.Budget.S, req.Budget.R, o)
	})
}

// megaView resolves a warm (never freshly built) mega-base projection for
// one exact-budget request, or nil when the request cannot route through
// one: combining kinds, overridden backends, no pool, no covering warm
// session, or an unmappable family.
func (e *Engine) megaView(req Request, o SynthOptions) *synth.MegaFamilyView {
	if e.sessions == nil || req.Kind.IsCombining() || o.Backend != e.backend {
		return nil
	}
	k := req.Budget.R - req.Budget.S
	mega := e.sessions.Mega(req.Topo, req.Root, o, []collective.Kind{req.Kind}, req.Budget.C, req.Budget.S, k, false)
	if mega == nil {
		return nil
	}
	coll, err := collective.New(req.Kind, req.Topo.P, req.Budget.C, req.Root)
	if err != nil {
		return nil
	}
	return mega.View(coll)
}

// SynthesizeInstance answers one raw SynColl instance (non-combining
// only; custom collectives go through here). opts overrides the engine
// solver options; nil uses the engine defaults. Instances are cached by
// the structural fingerprint of their collective and topology.
func (e *Engine) SynthesizeInstance(ctx context.Context, in Instance, opts *SynthOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	o := e.solveOptions(0, opts)
	parts := append([]string{
		"instance/v1",
		in.Coll.Fingerprint(),
		in.Topo.Fingerprint(),
		strconv.Itoa(in.Steps),
		strconv.Itoa(in.Round),
	}, optionParts(o)...)
	fp := fingerprintKey(parts...)
	budget := Budget{C: in.Coll.C, S: in.Steps, R: in.Round}
	if ent := e.lookupAlg(fp); ent != nil {
		e.progress("engine: cache hit %v %s on %s [%s]", in.Coll.Kind, budget, in.Topo.Name, fp)
		return &Result{Algorithm: ent.alg, Status: ent.status, CacheHit: true, Wall: time.Since(t0), Fingerprint: fp}, nil
	}
	res, err := synth.SynthesizeContext(ctx, in, o)
	if err != nil {
		return nil, err
	}
	if res.Status != Unknown {
		e.storeAlg(fp, &cacheEntry{
			status: res.Status, alg: res.Algorithm,
			kind: in.Coll.Kind.String(), topoName: in.Topo.Name, root: int(in.Coll.Root), budget: budget,
		})
	}
	return &Result{Algorithm: res.Algorithm, Status: res.Status, Wall: time.Since(t0), Fingerprint: fp}, nil
}

// Pareto runs the paper's Algorithm 1 sweep for a non-combining
// collective. Frontiers cache whole; a successful sweep additionally
// seeds the algorithm cache with every frontier point, so later exact
// (C, S, R) requests for those budgets are served without re-solving.
// The frontier is identical for every worker count. On a sweep error the
// returned result carries the points merged so far alongside the error.
func (e *Engine) Pareto(ctx context.Context, req ParetoRequest) (*ParetoResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	fp, o, maxSteps, maxChunks := e.paretoKey(req)
	if pts, ok := e.lookupFrontier(fp); ok {
		e.progress("engine: frontier cache hit %v on %s [%s]", req.Kind, req.Topo.Name, fp)
		// Return a copied slice so callers cannot corrupt the cached
		// frontier; the algorithms themselves are shared and immutable.
		return &ParetoResult{
			Points:   append([]ParetoPoint(nil), pts...),
			CacheHit: true, Wall: time.Since(t0), Fingerprint: fp,
		}, nil
	}
	workers := req.Workers
	if workers < 1 {
		workers = e.workers
	}
	progress := req.Progress
	if progress == nil {
		progress = e.progress
	}
	// Route the sweep through the engine's persistent session pool so
	// per-family solver state survives across sweeps — unless the request
	// overrode the backend (the pool's sessions belong to the engine's).
	noSessions := req.NoSessions || e.noSessions
	pool := e.sessions
	if noSessions || (req.Options != nil && req.Options.Backend != nil) {
		pool = nil
	}
	// Mega-base routing: a request that asked for it builds (or grows) the
	// pool's per-topology mega session; otherwise an already-warm covering
	// session (left by ParetoSynthesizeKinds, WarmMegaBase, or an earlier
	// -mega sweep) is reused, and a cold pool changes nothing.
	var mega *synth.MegaSession
	if pool != nil {
		mega = pool.Mega(req.Topo, req.Root, o, []collective.Kind{req.Kind}, maxChunks, maxSteps, req.K, req.MegaBase)
	}
	var stats ParetoStats
	pts, err := synth.ParetoSynthesize(req.Kind, req.Topo, req.Root, ParetoOptions{
		K: req.K, MaxSteps: maxSteps, MaxChunks: maxChunks,
		Instance: o, Progress: progress, Workers: workers,
		Context: ctx, Stats: &stats,
		NoSessions: noSessions, Pool: pool, Mega: mega,
	})
	e.mu.Lock()
	e.coreSolves += uint64(stats.CoreSolves)
	e.prunedProbes += uint64(stats.PrunedProbes)
	e.templateHits += uint64(stats.TemplateHits)
	e.migratedLearnts += uint64(stats.MigratedLearnts)
	e.portfolioSolves += uint64(stats.PortfolioSolves)
	e.sharedLearnts += uint64(stats.SharedLearnts)
	e.cubeSplits += uint64(stats.CubeSplits)
	e.megaSelects += uint64(stats.MegaProbes)
	e.megaEncodes += uint64(stats.MegaEncodes)
	e.mu.Unlock()
	res := &ParetoResult{Points: pts, Stats: stats, Wall: time.Since(t0), Fingerprint: fp}
	if err != nil {
		return res, err
	}
	e.storeFrontier(fp, pts)
	for _, p := range pts {
		preq := Request{Kind: req.Kind, Topo: req.Topo, Root: req.Root, Budget: Budget{C: p.C, S: p.S, R: p.R}}
		e.storeAlg(e.requestFingerprint(preq, o), &cacheEntry{
			status: Sat, alg: p.Algorithm,
			kind: req.Kind.String(), topoName: req.Topo.Name, root: int(req.Root), budget: preq.Budget,
		})
	}
	return res, nil
}

// WarmMegaBase builds (or grows) and eagerly encodes the engine's pooled
// per-topology mega-base session, sized to cover budgets up to maxChunks
// chunks, maxSteps steps and R - S <= k. A serving layer calls it in the
// background once a topology's miss traffic proves hot, so later cache
// misses pay assumption-push + solve instead of encode + solve (see
// synth.MegaSession). It reports whether a live covering session is now
// warm; false means the configuration cannot host one (no pool, non-CDCL
// backend, oversized chunk universe, infeasible base) and misses stay on
// the one-shot path.
func (e *Engine) WarmMegaBase(topo *Topology, root Node, maxChunks, maxSteps, k int) bool {
	if e.sessions == nil || topo == nil {
		return false
	}
	// nil kind scope: a daemon warms for whatever kinds traffic may ask,
	// so the universe spans every non-combining kind.
	o := e.solveOptions(0, nil)
	mega := e.sessions.Mega(topo, root, o, nil, maxChunks, maxSteps, k, true)
	if mega == nil {
		return false
	}
	live, encode := mega.Prepare()
	if encode > 0 {
		e.mu.Lock()
		e.megaEncodes++
		e.mu.Unlock()
		e.progress("engine: mega-base for %s warmed in %v (C<=%d S<=%d K<=%d)",
			topo.Name, encode, maxChunks, maxSteps, k)
	}
	return live
}

// batchGroup is one coalesced fingerprint group of a SynthesizeAll
// batch; sess, when non-nil, routes the group's budget through a pooled
// incremental session instead of a one-shot solve.
type batchGroup struct {
	first int
	rest  []int
	sess  Session
}

// primeBatchSessions assigns pooled incremental sessions to the batch's
// fingerprint groups: groups sharing a (topology, collective, chunking)
// family — same everything except the (S, R) budget — discharge through
// one live solver as assumption-based exact-budget probes, the same
// route the Pareto sweep uses, instead of independent one-shot solves.
// Families with a single budget, combining collectives, and requests
// overriding the engine backend stay on the one-shot path. Sessions are
// primed with the expected probe count so lazy adoption does not
// one-shot the first probes of a known-hot batch.
func (e *Engine) primeBatchSessions(reqs []Request, groups map[string]*batchGroup, order []string) {
	if e.sessions == nil {
		return
	}
	type familyAgg struct {
		req        Request // representative member
		opts       SynthOptions
		keys       []string
		maxS, maxK int
	}
	fams := map[string]*familyAgg{}
	var famOrder []string
	for _, key := range order {
		g := groups[key]
		req := reqs[g.first]
		if e.peekAlg(key) != nil {
			// Already cached: answerRequest will serve it without solver
			// work, so it must not count toward priming a session.
			continue
		}
		o := e.solveOptions(req.Timeout, req.Options)
		if req.Kind.IsCombining() || o.Backend != e.backend {
			continue
		}
		if backendName(o) == "cdcl" && (o.Encoding != EncodingPaper || o.ProveUnsat) {
			// The built-in backend one-shots such sessions (direct
			// ablation encoding, proof recording — see cdclBackend.
			// NewSession); pooling them would only evict warm sessions.
			continue
		}
		fk := strings.Join(append([]string{
			req.Kind.String(),
			req.Topo.Fingerprint(),
			strconv.Itoa(int(req.Root)),
			strconv.Itoa(req.Budget.C),
			strconv.FormatBool(o.ProveUnsat),
		}, optionParts(o)...), "|")
		fa, ok := fams[fk]
		if !ok {
			fa = &familyAgg{req: req, opts: o}
			fams[fk] = fa
			famOrder = append(famOrder, fk)
		}
		fa.keys = append(fa.keys, key)
		if req.Budget.S > fa.maxS {
			fa.maxS = req.Budget.S
		}
		if k := req.Budget.R - req.Budget.S; k > fa.maxK {
			fa.maxK = k
		}
	}
	primed := 0
	for _, fk := range famOrder {
		if primed >= e.sessions.Cap() {
			// Priming past the pool capacity would evict (and close) the
			// batch's own earlier sessions before their groups solve;
			// remaining families fall back to one-shot solving.
			break
		}
		fa := fams[fk]
		if len(fa.keys) < synth.BatchSessionMinBudgets {
			// Too few budgets to outlast lazy adoption: the session would
			// one-shot every probe while occupying pool capacity that
			// sweeps may have warmed.
			continue
		}
		coll, err := collective.New(fa.req.Kind, fa.req.Topo.P, fa.req.Budget.C, fa.req.Root)
		if err != nil {
			continue
		}
		// A warm covering mega-base session beats a fresh per-family one:
		// leave the group on the plain path, where Engine.Synthesize
		// routes each budget through the shared base by assumption.
		if mega := e.sessions.Mega(fa.req.Topo, fa.req.Root, fa.opts, []collective.Kind{fa.req.Kind}, fa.req.Budget.C, fa.maxS, fa.maxK, false); mega != nil && mega.View(coll) != nil {
			continue
		}
		fam := synth.Family{Coll: coll, Topo: fa.req.Topo, MaxSteps: fa.maxS, MaxExtraRounds: fa.maxK}
		sess, err := e.sessions.Session(fam, fa.opts)
		if err != nil {
			continue // fall back one-shot (e.g. pool closed)
		}
		if pr, ok := sess.(interface{ Prime(int) }); ok {
			pr.Prime(len(fa.keys))
		}
		primed++
		for _, key := range fa.keys {
			groups[key].sess = sess
		}
	}
}

// synthesizeGrouped answers one batched (pre-validated) request,
// discharging the exact budget through the group's pooled session when
// one was assigned. Sessions re-derive Sat witnesses canonically, so
// the result — and the cache entry it stores — is byte-identical to
// Engine.Synthesize's.
func (e *Engine) synthesizeGrouped(ctx context.Context, req Request, sess Session) (*Result, error) {
	if sess == nil {
		return e.Synthesize(ctx, req)
	}
	o := e.solveOptions(req.Timeout, req.Options)
	return e.answerRequest(ctx, req, o, func(ctx context.Context) (*Algorithm, Status, error) {
		sres, err := sess.Solve(ctx, req.Budget.S, req.Budget.R, o)
		if err != nil {
			return nil, Unknown, err
		}
		e.mu.Lock()
		e.templateHits += uint64(sres.TemplateHits)
		e.migratedLearnts += uint64(sres.MigratedLearnts)
		e.mu.Unlock()
		return sres.Algorithm, sres.Status, nil
	})
}

// SynthesizeAll answers a batch of requests concurrently over the
// engine's worker pool. Results come back in request order regardless of
// completion order; duplicate requests (same canonical fingerprint) are
// solved once and fanned out as cache hits. Batches sharing a
// (topology, collective, chunking) family route through the engine's
// pooled incremental sessions via assumption-based exact-budget probes
// (see primeBatchSessions); results are byte-identical to independent
// solves. Failed requests leave a nil slot; the returned error joins
// every per-request failure.
func (e *Engine) SynthesizeAll(ctx context.Context, reqs []Request) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))
	groups := map[string]*batchGroup{}
	var order []string
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			errs[i] = fmt.Errorf("request %d: %w", i, err)
			continue
		}
		o := e.solveOptions(reqs[i].Timeout, reqs[i].Options)
		key := e.requestFingerprint(reqs[i], o)
		if g, ok := groups[key]; ok {
			g.rest = append(g.rest, i)
		} else {
			groups[key] = &batchGroup{first: i}
			order = append(order, key)
		}
	}
	e.primeBatchSessions(reqs, groups, order)
	workers := e.workers
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}
	keyCh := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range keyCh {
				g := groups[key]
				res, err := e.synthesizeGrouped(ctx, reqs[g.first], g.sess)
				if err != nil {
					errs[g.first] = fmt.Errorf("request %d: %w", g.first, err)
					for _, j := range g.rest {
						errs[j] = fmt.Errorf("request %d: %w", j, err)
					}
					continue
				}
				results[g.first] = res
				for _, j := range g.rest {
					if res.Status == Unknown {
						// An Unknown outcome reflects the first request's
						// solver budget, not the group's; duplicates may
						// carry different timeouts, so solve them
						// individually rather than fanning Unknown out.
						results[j], errs[j] = e.Synthesize(ctx, reqs[j])
						if errs[j] != nil {
							errs[j] = fmt.Errorf("request %d: %w", j, errs[j])
						}
						continue
					}
					dup := *res
					dup.CacheHit = true
					results[j] = &dup
				}
			}
		}()
	}
	for _, key := range order {
		keyCh <- key
	}
	close(keyCh)
	wg.Wait()
	return results, errors.Join(errs...)
}
