package sccl_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	sccl "repro"
	"repro/internal/synth"
)

// TestEngineLegacyEquivalence is the old-vs-new golden: for a matrix of
// (kind, topology, budget), Engine.Synthesize produces byte-identical
// algorithms to the pre-engine synthesis path, including when served
// from the cache on a repeated request.
func TestEngineLegacyEquivalence(t *testing.T) {
	matrix := []struct {
		kind    sccl.Kind
		topo    *sccl.Topology
		c, s, r int
	}{
		{sccl.Allgather, sccl.Ring(4), 1, 3, 3},
		{sccl.Allgather, sccl.BidirRing(4), 1, 2, 3},
		{sccl.Broadcast, sccl.Line(4), 1, 3, 3},
		{sccl.Gather, sccl.FullyConnected(3), 1, 1, 2},
		{sccl.Reducescatter, sccl.BidirRing(4), 1, 2, 3},
		{sccl.Allreduce, sccl.BidirRing(4), 1, 2, 3},
	}
	eng := sccl.NewEngine(sccl.EngineOptions{})
	for _, m := range matrix {
		legacyAlg, legacyStatus, err := synth.SynthesizeCollective(m.kind, m.topo, 0, m.c, m.s, m.r, synth.Options{})
		if err != nil {
			t.Fatalf("legacy %v on %s: %v", m.kind, m.topo.Name, err)
		}
		if legacyStatus != sccl.Sat {
			t.Fatalf("legacy %v on %s: %v", m.kind, m.topo.Name, legacyStatus)
		}
		legacyBytes, err := sccl.EncodeAlgorithm(legacyAlg)
		if err != nil {
			t.Fatal(err)
		}
		req := sccl.Request{
			Kind: m.kind, Topo: m.topo,
			Budget: sccl.Budget{C: m.c, S: m.s, R: m.r},
		}
		for round := 0; round < 2; round++ {
			res, err := eng.Synthesize(context.Background(), req)
			if err != nil {
				t.Fatalf("engine %v on %s: %v", m.kind, m.topo.Name, err)
			}
			if res.Status != legacyStatus {
				t.Fatalf("engine %v on %s: status %v, legacy %v", m.kind, m.topo.Name, res.Status, legacyStatus)
			}
			if wantHit := round == 1; res.CacheHit != wantHit {
				t.Errorf("engine %v on %s round %d: CacheHit = %v", m.kind, m.topo.Name, round, res.CacheHit)
			}
			engineBytes, err := sccl.EncodeAlgorithm(res.Algorithm)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(legacyBytes, engineBytes) {
				t.Errorf("engine %v on %s round %d: algorithm differs from legacy", m.kind, m.topo.Name, round)
			}
		}
	}
}

// frontierBytes serializes a frontier with wall clocks zeroed so runs
// can be byte-compared.
func frontierBytes(t *testing.T, pts []sccl.ParetoPoint) []byte {
	t.Helper()
	norm := append([]sccl.ParetoPoint(nil), pts...)
	for i := range norm {
		norm[i].SynthesisTime = 0
	}
	data, err := sccl.EncodeFrontier(norm)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestEngineParetoEquivalence checks Engine.Pareto against the legacy
// sweep for Workers 1 and 4, and that a repeated sweep is served from
// the frontier cache with zero new solver probes in its ParetoStats.
func TestEngineParetoEquivalence(t *testing.T) {
	topo := sccl.BidirRing(4)
	legacyPts, err := synth.ParetoSynthesize(sccl.Allgather, topo, 0, synth.ParetoOptions{
		K: 1, MaxSteps: 4, MaxChunks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	legacy := frontierBytes(t, legacyPts)
	for _, workers := range []int{1, 4} {
		eng := sccl.NewEngine(sccl.EngineOptions{Workers: workers})
		req := sccl.ParetoRequest{
			Kind: sccl.Allgather, Topo: topo,
			K: 1, MaxSteps: 4, MaxChunks: 4,
		}
		res, err := eng.Pareto(context.Background(), req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.CacheHit {
			t.Errorf("workers=%d: first sweep reported a cache hit", workers)
		}
		if res.Stats.Probes == 0 {
			t.Errorf("workers=%d: first sweep ran no probes", workers)
		}
		if got := frontierBytes(t, res.Points); !bytes.Equal(legacy, got) {
			t.Errorf("workers=%d: frontier differs from legacy sweep", workers)
		}
		// Second sweep: frontier cache hit, no new solver probes.
		again, err := eng.Pareto(context.Background(), req)
		if err != nil {
			t.Fatalf("workers=%d repeat: %v", workers, err)
		}
		if !again.CacheHit {
			t.Errorf("workers=%d: repeated sweep missed the cache", workers)
		}
		if again.Stats.Probes != 0 || again.Stats.Pruned != 0 {
			t.Errorf("workers=%d: cached sweep reports probes %+v", workers, again.Stats)
		}
		if got := frontierBytes(t, again.Points); !bytes.Equal(legacy, got) {
			t.Errorf("workers=%d: cached frontier differs", workers)
		}
		// The sweep seeds the algorithm cache: exact-budget requests for
		// frontier points are hits.
		for _, p := range res.Points {
			r, err := eng.Synthesize(context.Background(), sccl.Request{
				Kind: sccl.Allgather, Topo: topo,
				Budget: sccl.Budget{C: p.C, S: p.S, R: p.R},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !r.CacheHit {
				t.Errorf("workers=%d: frontier point %s not seeded into the cache", workers, r.Fingerprint)
			}
		}
	}
}

// TestEngineCacheKeying checks that the cache distinguishes what it
// must (topology structure, kind, budget) and ignores what it may
// (topology names, timeouts).
func TestEngineCacheKeying(t *testing.T) {
	eng := sccl.NewEngine(sccl.EngineOptions{})
	ring := sccl.Ring(4)
	res1, err := eng.Synthesize(nil, sccl.Request{
		Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 3, R: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A renamed but structurally identical topology hits.
	renamed := &sccl.Topology{Name: "other-name", P: ring.P, Relations: ring.Relations}
	res2, err := eng.Synthesize(nil, sccl.Request{
		Kind: sccl.Allgather, Topo: renamed, Budget: sccl.Budget{C: 1, S: 3, R: 3}, Timeout: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit || res2.Fingerprint != res1.Fingerprint {
		t.Error("structurally identical request missed the cache")
	}
	// A different budget misses.
	res3, err := eng.Synthesize(nil, sccl.Request{
		Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 4, R: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res3.CacheHit {
		t.Error("different budget hit the cache")
	}
	// Unsat verdicts are cached too.
	u1, err := eng.Synthesize(nil, sccl.Request{
		Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 2, R: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := eng.Synthesize(nil, sccl.Request{
		Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 2, R: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if u1.Status != sccl.Unsat || u2.Status != sccl.Unsat || !u2.CacheHit {
		t.Errorf("UNSAT caching: %v/%v hit=%v", u1.Status, u2.Status, u2.CacheHit)
	}
	stats := eng.CacheStats()
	if stats.Algorithms == 0 || stats.Hits == 0 {
		t.Errorf("cache stats: %+v", stats)
	}
	// DisableCache really disables.
	off := sccl.NewEngine(sccl.EngineOptions{DisableCache: true})
	for i := 0; i < 2; i++ {
		r, err := off.Synthesize(nil, sccl.Request{
			Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 3, R: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.CacheHit {
			t.Error("disabled cache served a hit")
		}
	}
}

// TestEngineSynthesizeAll checks deterministic result order and
// duplicate coalescing.
func TestEngineSynthesizeAll(t *testing.T) {
	eng := sccl.NewEngine(sccl.EngineOptions{Workers: 4})
	ring := sccl.Ring(4)
	reqs := []sccl.Request{
		{Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 3, R: 3}},
		{Kind: sccl.Broadcast, Topo: ring, Budget: sccl.Budget{C: 1, S: 3, R: 3}},
		{Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 3, R: 3}}, // duplicate of 0
		{Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 2, R: 2}}, // Unsat
	}
	results, err := eng.SynthesizeAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, want := range []sccl.Status{sccl.Sat, sccl.Sat, sccl.Sat, sccl.Unsat} {
		if results[i] == nil || results[i].Status != want {
			t.Fatalf("result %d: %+v, want %v", i, results[i], want)
		}
	}
	if !results[2].CacheHit {
		t.Error("duplicate request was not coalesced")
	}
	if results[0].Fingerprint != results[2].Fingerprint {
		t.Error("duplicate fingerprints differ")
	}
	a0, err := sccl.EncodeAlgorithm(results[0].Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sccl.EncodeAlgorithm(results[2].Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a0, a2) {
		t.Error("duplicate requests returned different algorithms")
	}
	// Invalid requests report per-index errors without sinking the batch.
	bad := append(reqs[:1:1], sccl.Request{Kind: sccl.Allgather, Budget: sccl.Budget{C: 1, S: 1, R: 1}})
	results, err = eng.SynthesizeAll(context.Background(), bad)
	if err == nil {
		t.Fatal("missing-topology request did not error")
	}
	if results[0] == nil || results[0].Status != sccl.Sat {
		t.Error("valid request in a failing batch was dropped")
	}
	if results[1] != nil {
		t.Error("invalid request produced a result")
	}
}

// TestEngineSynthesizeAllSessions checks the batched session routing: a
// batch of same-(topology, collective, C) requests differing only in
// budget must route through one pooled incremental session as
// exact-budget assumption probes and still return results byte-identical
// to a session-less engine solving each request independently.
func TestEngineSynthesizeAllSessions(t *testing.T) {
	ring := sccl.Ring(4)
	budgets := []sccl.Budget{
		{C: 1, S: 1, R: 1}, // Unsat
		{C: 1, S: 2, R: 2}, // Unsat
		{C: 1, S: 2, R: 3}, // Unsat
		{C: 1, S: 3, R: 3}, // Sat
		{C: 1, S: 4, R: 4}, // Sat
	}
	reqs := make([]sccl.Request, len(budgets))
	for i, b := range budgets {
		reqs[i] = sccl.Request{Kind: sccl.Allgather, Topo: ring, Budget: b}
	}
	eng := sccl.NewEngine(sccl.EngineOptions{Workers: 4})
	defer eng.Close()
	results, err := eng.SynthesizeAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Sessions == 0 {
		t.Errorf("batch of %d same-family budgets created no pooled session: %+v", len(reqs), cs)
	}
	plain := sccl.NewEngine(sccl.EngineOptions{NoSessions: true, DisableCache: true})
	for i, res := range results {
		want, err := plain.Synthesize(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if res == nil || res.Status != want.Status {
			t.Fatalf("request %d: session-batched %+v, independent %v", i, res, want.Status)
		}
		if want.Status != sccl.Sat {
			continue
		}
		a, err := sccl.EncodeAlgorithm(res.Algorithm)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sccl.EncodeAlgorithm(want.Algorithm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("request %d: session-batched algorithm differs from independent solve", i)
		}
	}
	// A second identical batch is served from the algorithm cache.
	again, err := eng.SynthesizeAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range again {
		if !res.CacheHit {
			t.Errorf("request %d not served from cache on the second batch", i)
		}
	}
}

// TestEngineLibraryRoundTrip persists one engine's cache and serves a
// fresh engine from it without re-solving.
func TestEngineLibraryRoundTrip(t *testing.T) {
	ring := sccl.Ring(4)
	req := sccl.Request{Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 3, R: 3}}
	unsatReq := sccl.Request{Kind: sccl.Allgather, Topo: ring, Budget: sccl.Budget{C: 1, S: 2, R: 2}}

	a := sccl.NewEngine(sccl.EngineOptions{})
	res, err := a.Synthesize(nil, req)
	if err != nil || res.Status != sccl.Sat {
		t.Fatalf("seed synthesis: %v %v", res, err)
	}
	if _, err := a.Synthesize(nil, unsatReq); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.SaveLibrary(&buf); err != nil {
		t.Fatal(err)
	}

	entries, err := sccl.DecodeLibrary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("library has %d entries, want 2", len(entries))
	}

	b := sccl.NewEngine(sccl.EngineOptions{})
	n, err := b.LoadLibrary(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 2 {
		t.Fatalf("LoadLibrary: %d %v", n, err)
	}
	served, err := b.Synthesize(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if !served.CacheHit || served.Status != sccl.Sat {
		t.Errorf("library-loaded engine missed: hit=%v status=%v", served.CacheHit, served.Status)
	}
	want, err := sccl.EncodeAlgorithm(res.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sccl.EncodeAlgorithm(served.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("library-served algorithm differs from the original")
	}
	servedUnsat, err := b.Synthesize(nil, unsatReq)
	if err != nil {
		t.Fatal(err)
	}
	if !servedUnsat.CacheHit || servedUnsat.Status != sccl.Unsat {
		t.Errorf("library-loaded UNSAT missed: hit=%v status=%v", servedUnsat.CacheHit, servedUnsat.Status)
	}
	// Saving the second engine reproduces the same bytes: the library
	// format is stable and sorted.
	var buf2 bytes.Buffer
	if err := b.SaveLibrary(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("library save/load/save is not byte-stable")
	}
}

// TestEngineInstance covers the raw-instance path with a custom
// collective, including its cache.
func TestEngineInstance(t *testing.T) {
	eng := sccl.NewEngine(sccl.EngineOptions{})
	agv, err := sccl.AllgatherV(3, []int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	in := sccl.Instance{Coll: agv, Topo: sccl.FullyConnected(3), Steps: 2, Round: 3}
	res, err := eng.SynthesizeInstance(context.Background(), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sccl.Sat {
		t.Fatalf("status %v", res.Status)
	}
	again, err := eng.SynthesizeInstance(context.Background(), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("repeated instance missed the cache")
	}
}

// TestEngineSessionPool checks that Pareto sweeps route through the
// engine's persistent session pool, that frontiers stay byte-identical
// with sessions disabled, and that a closed engine degrades gracefully.
func TestEngineSessionPool(t *testing.T) {
	eng := sccl.NewEngine(sccl.EngineOptions{Workers: 1})
	req := sccl.ParetoRequest{Kind: sccl.Broadcast, Topo: sccl.BidirRing(6), K: 2, MaxSteps: 6, MaxChunks: 6}
	res, err := eng.Pareto(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Families == 0 {
		t.Errorf("sweep recorded no session families: %+v", res.Stats)
	}
	cs := eng.CacheStats()
	if cs.Sessions == 0 || cs.SessionMisses == 0 {
		t.Errorf("engine pool unused: %+v", cs)
	}
	// The engine aggregates the sweep's unsat-core counters.
	if res.Stats.CoreSolves == 0 {
		t.Errorf("session sweep produced no budget cores: %+v", res.Stats)
	}
	if cs.CoreSolves != uint64(res.Stats.CoreSolves) || cs.PrunedProbes != uint64(res.Stats.PrunedProbes) {
		t.Errorf("CacheStats cores %d/%d, want sweep's %d/%d",
			cs.CoreSolves, cs.PrunedProbes, res.Stats.CoreSolves, res.Stats.PrunedProbes)
	}
	// The same sweep with sessions disabled must match point for point
	// (fresh engine: the frontier cache would otherwise short-circuit).
	plain := sccl.NewEngine(sccl.EngineOptions{Workers: 1, NoSessions: true})
	reqOff := req
	reqOff.NoSessions = true
	want, err := plain.Pareto(context.Background(), reqOff)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(want.Points) {
		t.Fatalf("frontiers differ: %d vs %d points", len(res.Points), len(want.Points))
	}
	for i := range want.Points {
		g, w := res.Points[i], want.Points[i]
		g.SynthesisTime, w.SynthesisTime = 0, 0
		gb, err1 := json.Marshal(g)
		wb, err2 := json.Marshal(w)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if string(gb) != string(wb) {
			t.Errorf("point %d differs:\n sessions: %s\n one-shot: %s", i, gb, wb)
		}
	}
	// Engine-level NoSessions must disable sessions even when the request
	// does not ask for it.
	off := sccl.NewEngine(sccl.EngineOptions{Workers: 1, NoSessions: true})
	offRes, err := off.Pareto(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if offRes.Stats.SessionProbes != 0 || offRes.Stats.Families != 0 {
		t.Errorf("EngineOptions.NoSessions ignored by sweep: %+v", offRes.Stats)
	}
	// Close releases the pool; later sweeps still answer (one-shot path).
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	req2 := req
	req2.Topo = sccl.BidirRing(8)
	if _, err := eng.Pareto(context.Background(), req2); err != nil {
		t.Fatalf("sweep after Close: %v", err)
	}
}
