package sccl

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/collective"
)

// Budget is the exact synthesis budget of a Request: C chunks per node,
// S synchronous steps, and R total rounds — the paper's k-synchronous
// class with k = R - S (§3.1).
type Budget struct {
	C int `json:"c"`
	S int `json:"s"`
	R int `json:"r"`
}

// Validate checks the budget invariants shared by every collective.
func (b Budget) Validate() error {
	if b.C < 1 {
		return fmt.Errorf("sccl: budget needs C >= 1 chunk per node (got %d)", b.C)
	}
	if b.S < 1 {
		return fmt.Errorf("sccl: budget needs S >= 1 step (got %d)", b.S)
	}
	if b.R < b.S {
		return fmt.Errorf("sccl: budget has R=%d < S=%d (each step takes >= 1 round)", b.R, b.S)
	}
	return nil
}

func (b Budget) String() string { return fmt.Sprintf("(C=%d,S=%d,R=%d)", b.C, b.S, b.R) }

// Request describes one synthesis query to an Engine: the collective
// kind, the topology, the root (for rooted collectives), and the exact
// (C, S, R) budget. For combining collectives the budget refers to the
// dual instance (paper §3.5): an Allreduce request with Budget{C, S, R}
// synthesizes its Allgather phase at that budget and composes to a
// (C·P, 2S, 2R) algorithm. Deadlines and cancellation flow through the
// ctx argument of Engine.Synthesize; Timeout additionally bounds the
// solver itself.
type Request struct {
	Kind Kind
	Topo *Topology
	// Spec names the topology structurally as an alternative to Topo:
	// when Topo is nil, Validate builds it from the spec. Supplying both
	// is an error unless they agree (same fingerprint). The built
	// topology — not the spec — is what fingerprints and serializes, so
	// a spec-posed request is indistinguishable from the equivalent
	// Topo-posed one.
	Spec   *TopologySpec
	Root   Node
	Budget Budget
	// Timeout bounds the solver for this request; zero uses the engine
	// default.
	Timeout time.Duration
	// Options overrides the engine's solver options (encoding, conflict
	// budget, backend) for this request. Nil uses the engine defaults.
	// Options are engine-local and not serialized.
	Options *SynthOptions
}

// Validate checks that the request is solvable as posed: a structurally
// valid topology, a known collective kind, a root in range, a coherent
// budget, and (for Allreduce) C divisible by P.
func (r *Request) Validate() error {
	if err := resolveSpec(&r.Topo, r.Spec, "request"); err != nil {
		return err
	}
	if err := r.Topo.Validate(); err != nil {
		return err
	}
	if int(r.Root) < 0 || int(r.Root) >= r.Topo.P {
		return fmt.Errorf("sccl: root %d out of range [0,%d)", r.Root, r.Topo.P)
	}
	if err := r.Budget.Validate(); err != nil {
		return err
	}
	if r.Timeout < 0 {
		return fmt.Errorf("sccl: negative timeout %v", r.Timeout)
	}
	// The budget of a combining collective refers to its dual instance,
	// so C carries no per-kind divisibility constraint here — only the
	// kind itself must be known.
	for _, k := range collective.Kinds() {
		if k == r.Kind {
			return nil
		}
	}
	return fmt.Errorf("sccl: unknown collective kind %v", r.Kind)
}

// resolveSpec reconciles the Topo/Spec alternatives of a request: a
// spec-only request builds its topology in place, and supplying both
// demands structural agreement so the two namings cannot drift.
func resolveSpec(topo **Topology, spec *TopologySpec, what string) error {
	if *topo == nil {
		if spec == nil {
			return fmt.Errorf("sccl: %s needs a topology or a topology spec", what)
		}
		built, err := spec.Build()
		if err != nil {
			return err
		}
		*topo = built
		return nil
	}
	if spec != nil {
		built, err := spec.Build()
		if err != nil {
			return err
		}
		if built.Fingerprint() != (*topo).Fingerprint() {
			return fmt.Errorf("sccl: %s topology and spec %s disagree", what, spec)
		}
	}
	return nil
}

type requestJSON struct {
	Version   int       `json:"version"`
	Kind      string    `json:"kind"`
	Topology  *Topology `json:"topology"`
	Root      int       `json:"root"`
	Budget    Budget    `json:"budget"`
	TimeoutNs int64     `json:"timeoutNs,omitempty"`
}

const serializeVersion = 1

// MarshalJSON renders the request in the stable v1 wire format. The
// solver Options override is engine-local and not serialized; a
// spec-posed request serializes its built topology, so the wire format
// is independent of which naming posed it.
func (r Request) MarshalJSON() ([]byte, error) {
	if err := resolveSpec(&r.Topo, r.Spec, "request"); err != nil {
		return nil, err
	}
	return json.Marshal(requestJSON{
		Version:   serializeVersion,
		Kind:      r.Kind.String(),
		Topology:  r.Topo,
		Root:      int(r.Root),
		Budget:    r.Budget,
		TimeoutNs: int64(r.Timeout),
	})
}

// UnmarshalJSON decodes the v1 wire format and re-validates the request.
func (r *Request) UnmarshalJSON(data []byte) error {
	var in requestJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Version != serializeVersion {
		return fmt.Errorf("sccl: unsupported request JSON version %d (want %d)", in.Version, serializeVersion)
	}
	kind, err := ParseKind(in.Kind)
	if err != nil {
		return err
	}
	dec := Request{
		Kind:    kind,
		Topo:    in.Topology,
		Root:    Node(in.Root),
		Budget:  in.Budget,
		Timeout: time.Duration(in.TimeoutNs),
	}
	if err := dec.Validate(); err != nil {
		return fmt.Errorf("sccl: decoded request invalid: %w", err)
	}
	*r = dec
	return nil
}

// Result is the outcome of one engine synthesis request.
type Result struct {
	// Algorithm is the synthesized schedule; nil unless Status is Sat.
	Algorithm *Algorithm
	Status    Status
	// CacheHit reports that the result was served from the engine's
	// algorithm cache without running the solver.
	CacheHit bool
	// Wall is the end-to-end wall clock of the call (near zero on hits).
	Wall time.Duration
	// Fingerprint is the canonical request fingerprint the engine keyed
	// its cache with.
	Fingerprint string
}

type resultJSON struct {
	Version     int        `json:"version"`
	Status      string     `json:"status"`
	CacheHit    bool       `json:"cacheHit"`
	WallNs      int64      `json:"wallNs"`
	Fingerprint string     `json:"fingerprint"`
	Algorithm   *Algorithm `json:"algorithm,omitempty"`
}

func statusFromString(s string) (Status, error) {
	switch s {
	case Sat.String():
		return Sat, nil
	case Unsat.String():
		return Unsat, nil
	case Unknown.String():
		return Unknown, nil
	}
	return Unknown, fmt.Errorf("sccl: unknown status %q", s)
}

// MarshalJSON renders the result in the stable v1 wire format.
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Version:     serializeVersion,
		Status:      r.Status.String(),
		CacheHit:    r.CacheHit,
		WallNs:      int64(r.Wall),
		Fingerprint: r.Fingerprint,
		Algorithm:   r.Algorithm,
	})
}

// UnmarshalJSON decodes the v1 wire format; the embedded algorithm (if
// any) re-validates during its own decode.
func (r *Result) UnmarshalJSON(data []byte) error {
	var in resultJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Version != serializeVersion {
		return fmt.Errorf("sccl: unsupported result JSON version %d (want %d)", in.Version, serializeVersion)
	}
	status, err := statusFromString(in.Status)
	if err != nil {
		return err
	}
	if status == Sat && in.Algorithm == nil {
		return errors.New("sccl: SAT result JSON without an algorithm")
	}
	*r = Result{
		Algorithm:   in.Algorithm,
		Status:      status,
		CacheHit:    in.CacheHit,
		Wall:        time.Duration(in.WallNs),
		Fingerprint: in.Fingerprint,
	}
	return nil
}

// ParetoRequest describes one frontier sweep to an Engine: the
// non-combining collective kind, topology, root, and the Algorithm 1
// enumeration bounds.
type ParetoRequest struct {
	Kind Kind
	Topo *Topology
	// Spec names the topology structurally as an alternative to Topo,
	// with the same semantics as Request.Spec.
	Spec *TopologySpec
	Root Node
	// K bounds the algorithm class: R <= S + K.
	K int
	// MaxSteps caps the S enumeration; 0 selects the engine default
	// (P + 2).
	MaxSteps int
	// MaxChunks caps the per-node chunk count; 0 selects the engine
	// default (2P).
	MaxChunks int
	// Timeout bounds each probe's solver; zero uses the engine default.
	Timeout time.Duration
	// Workers overrides the engine worker-pool size for this sweep; 0
	// uses the engine default. The frontier is identical for every
	// worker count, so Workers is excluded from the fingerprint.
	Workers int
	// Progress, if non-nil, receives a line per probe (otherwise the
	// engine's sink does). Not serialized.
	Progress func(format string, args ...any) `json:"-"`
	// Options overrides the engine's solver options for this sweep. Nil
	// uses the engine defaults. Not serialized. Overriding the Backend
	// bypasses the engine's session pool (the pooled solvers belong to
	// the engine backend); the sweep then uses a transient pool.
	Options *SynthOptions `json:"-"`
	// NoSessions disables incremental solver sessions for this sweep;
	// every probe solves one-shot. The frontier is byte-identical either
	// way, so the flag is excluded from the cache fingerprint.
	NoSessions bool `json:"-"`
	// MegaBase builds (or grows) the engine's per-topology mega-base
	// session for this sweep and routes covered families through it as
	// assumption-selected projections (see synth.MegaSession). Without it
	// a sweep still reuses an already-warm covering mega session. The
	// frontier is byte-identical either way, so — like NoSessions — the
	// flag is engine-local, not serialized, and excluded from the cache
	// fingerprint.
	MegaBase bool `json:"-"`
}

type paretoRequestJSON struct {
	Version   int       `json:"version"`
	Kind      string    `json:"kind"`
	Topology  *Topology `json:"topology"`
	Root      int       `json:"root"`
	K         int       `json:"k"`
	MaxSteps  int       `json:"maxSteps,omitempty"`
	MaxChunks int       `json:"maxChunks,omitempty"`
	TimeoutNs int64     `json:"timeoutNs,omitempty"`
	Workers   int       `json:"workers,omitempty"`
}

// MarshalJSON renders the sweep request in the stable v1 wire format.
// Progress, Options and NoSessions are engine-local and not serialized;
// Workers travels as a scheduling hint (it never changes the frontier
// and is excluded from the cache fingerprint).
func (r ParetoRequest) MarshalJSON() ([]byte, error) {
	if err := resolveSpec(&r.Topo, r.Spec, "pareto request"); err != nil {
		return nil, err
	}
	return json.Marshal(paretoRequestJSON{
		Version:   serializeVersion,
		Kind:      r.Kind.String(),
		Topology:  r.Topo,
		Root:      int(r.Root),
		K:         r.K,
		MaxSteps:  r.MaxSteps,
		MaxChunks: r.MaxChunks,
		TimeoutNs: int64(r.Timeout),
		Workers:   r.Workers,
	})
}

// UnmarshalJSON decodes the v1 wire format and re-validates the sweep
// request.
func (r *ParetoRequest) UnmarshalJSON(data []byte) error {
	var in paretoRequestJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Version != serializeVersion {
		return fmt.Errorf("sccl: unsupported pareto request JSON version %d (want %d)", in.Version, serializeVersion)
	}
	kind, err := ParseKind(in.Kind)
	if err != nil {
		return err
	}
	dec := ParetoRequest{
		Kind:      kind,
		Topo:      in.Topology,
		Root:      Node(in.Root),
		K:         in.K,
		MaxSteps:  in.MaxSteps,
		MaxChunks: in.MaxChunks,
		Timeout:   time.Duration(in.TimeoutNs),
		Workers:   in.Workers,
	}
	if err := dec.Validate(); err != nil {
		return fmt.Errorf("sccl: decoded pareto request invalid: %w", err)
	}
	*r = dec
	return nil
}

// Validate checks the sweep parameters.
func (r *ParetoRequest) Validate() error {
	if err := resolveSpec(&r.Topo, r.Spec, "pareto request"); err != nil {
		return err
	}
	if err := r.Topo.Validate(); err != nil {
		return err
	}
	if int(r.Root) < 0 || int(r.Root) >= r.Topo.P {
		return fmt.Errorf("sccl: root %d out of range [0,%d)", r.Root, r.Topo.P)
	}
	if r.K < 0 || r.MaxSteps < 0 || r.MaxChunks < 0 || r.Workers < 0 {
		return errors.New("sccl: pareto request has a negative bound")
	}
	if r.Timeout < 0 {
		return fmt.Errorf("sccl: negative timeout %v", r.Timeout)
	}
	if r.Kind.IsCombining() {
		return fmt.Errorf("sccl: Pareto needs a non-combining collective; got %v (use Engine.Synthesize)", r.Kind)
	}
	if _, err := collective.ToGlobal(r.Kind, r.Topo.P, 1); err != nil {
		return err
	}
	return nil
}

// ParetoResult is the outcome of one engine frontier sweep.
type ParetoResult struct {
	Points []ParetoPoint
	// Stats reports the probe scheduler's counters; zero when the sweep
	// was served from cache.
	Stats ParetoStats
	// CacheHit reports that the frontier came from the engine cache.
	CacheHit bool
	// Wall is the end-to-end wall clock of the call.
	Wall time.Duration
	// Fingerprint is the canonical sweep fingerprint.
	Fingerprint string
}
